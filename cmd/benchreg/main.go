// Command benchreg is the bench-regression harness for the substitution
// engine: it converts `go test -bench` output into a small JSON snapshot and
// compares a fresh snapshot against a committed baseline, warning when a
// benchmark's ns/op regressed beyond a threshold.
//
// Emit a snapshot (reads benchmark output on stdin):
//
//	go test -run '^$' -bench 'Substitute(Parallel|TrialCache)' -benchtime 1x . |
//	    benchreg -emit BENCH_substitute.json
//
// Compare a snapshot against the committed baseline (warn-only — the exit
// status stays 0 on regressions, because one-shot CI timings on shared
// hardware are too noisy to hard-fail on; the warning is the signal):
//
//	benchreg -compare testdata/bench/BENCH_substitute.json BENCH_substitute.json
//
// With `-benchmem` output, allocs/op and B/op are captured into dedicated
// snapshot fields and compared with their own (tighter) drift thresholds:
// allocation counts are deterministic for this engine, so they regress only
// when the code's allocation behavior actually changed, and a much smaller
// threshold than the timing one is appropriate. Other non-timing metrics
// (lits, trials, hit%) are carried in the snapshot so a reviewer can see
// whether a timing shift came with a behavior shift (results moving would
// also trip the golden-table test), but are not compared.
//
// Scaling floors are the one hard-fail dimension. The baseline may carry a
// "scaling_floors" map from a benchmark family (e.g. "SubstituteScale/cone10k",
// which must have a "<family>/w1" entry) to minimum w1/wN speedup ratios per
// worker variant (e.g. {"w8": 0.8}). Unlike raw ns/op — which drifts with host
// load — the *ratio* between worker counts of the same benchmark in the same
// run is stable, so a ratio below its committed floor means multi-worker
// scheduling genuinely regressed (e.g. speculation being discarded wholesale),
// and -compare exits nonzero. -emit preserves the scaling_floors block from an
// existing snapshot at the output path, so re-recording timings keeps floors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// snapshot is the committed baseline shape (testdata/bench/BENCH_substitute.json).
type snapshot struct {
	// Benchmarks maps a benchmark name (GOMAXPROCS suffix stripped, e.g.
	// "SubstituteTrialCache/on") to its measurements.
	Benchmarks map[string]measure `json:"benchmarks"`
	// ScalingFloors maps a benchmark family (e.g. "SubstituteScale/cone10k")
	// to minimum w1/wN speedup ratios per worker variant (e.g. {"w8": 0.8}).
	// Violations are hard failures in -compare, not warnings: the ratio is
	// taken within one run, so host noise cancels out.
	ScalingFloors map[string]map[string]float64 `json:"scaling_floors,omitempty"`
}

type measure struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	emit := flag.String("emit", "", "parse `go test -bench` output on stdin and write a JSON snapshot to this file")
	compare := flag.Bool("compare", false, "compare two snapshots (args: baseline current); warn on regressions")
	threshold := flag.Float64("threshold", 15, "ns/op regression warning threshold in percent (with -compare)")
	allocThreshold := flag.Float64("allocthreshold", 5, "allocs/op regression warning threshold in percent (with -compare)")
	byteThreshold := flag.Float64("bytethreshold", 10, "B/op regression warning threshold in percent (with -compare)")
	flag.Parse()

	switch {
	case *emit != "" && !*compare:
		if err := runEmit(os.Stdin, *emit); err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			os.Exit(1)
		}
	case *compare && *emit == "":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchreg: -compare needs exactly two args: baseline.json current.json")
			os.Exit(2)
		}
		th := thresholds{ns: *threshold, allocs: *allocThreshold, bytes: *byteThreshold}
		if err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), th); err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchreg: exactly one of -emit FILE or -compare baseline.json current.json")
		os.Exit(2)
	}
}

func runEmit(r io.Reader, path string) error {
	snap, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (pipe `go test -bench` output in)")
	}
	// Re-recording timings must not silently drop the committed floors:
	// carry the scaling_floors block over from any snapshot already at path.
	if old, err := load(path); err == nil && len(old.ScalingFloors) > 0 {
		snap.ScalingFloors = old.ScalingFloors
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchreg: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	return nil
}

// parseBench reads `go test -bench` output: result lines look like
//
//	BenchmarkSubstituteTrialCache/on-8   1   290647451 ns/op   7.9 hit%   534 lits
//
// i.e. name-P, iteration count, then (value, unit) pairs.
func parseBench(r io.Reader) (snapshot, error) {
	snap := snapshot{Benchmarks: make(map[string]measure)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the trailing -GOMAXPROCS so snapshots compare across hosts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := measure{Metrics: make(map[string]float64)}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				ok = true
			case "allocs/op":
				m.AllocsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			default:
				m.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			if len(m.Metrics) == 0 {
				m.Metrics = nil
			}
			snap.Benchmarks[name] = m
		}
	}
	return snap, sc.Err()
}

func load(path string) (snapshot, error) {
	var s snapshot
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return s, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// thresholds holds the per-dimension regression warning thresholds (percent).
type thresholds struct {
	ns, allocs, bytes float64
}

func runCompare(w io.Writer, basePath, curPath string, th thresholds) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base.Benchmarks))
	// Keys collected then sorted before use.
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	warned := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "benchreg: WARNING: %s in baseline but not in this run\n", name)
			warned++
			continue
		}
		warned += compareDim(w, name, "ns/op", b.NsPerOp, c.NsPerOp, th.ns)
		warned += compareDim(w, name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, th.allocs)
		warned += compareDim(w, name, "B/op", b.BytesPerOp, c.BytesPerOp, th.bytes)
	}
	if warned > 0 {
		fmt.Fprintf(w, "benchreg: %d warning(s) — investigate before committing, or re-record the baseline\n", warned)
	}
	return checkScalingFloors(w, base, cur)
}

// checkScalingFloors enforces the baseline's scaling_floors block against the
// current run: for each family, the current w1/wN ns-per-op ratio must meet
// the committed floor. Unlike the warn-only dimensions this returns an error
// (nonzero exit) on violation — both sides of the ratio come from the same
// run on the same host, so noise cancels and a miss is a real scheduling
// regression. A family or variant missing from the current run also fails:
// deleting the benchmark must not silently disable the gate.
func checkScalingFloors(w io.Writer, base, cur snapshot) error {
	families := make([]string, 0, len(base.ScalingFloors))
	for f := range base.ScalingFloors {
		families = append(families, f)
	}
	sort.Strings(families)
	failed := 0
	for _, fam := range families {
		ref, ok := cur.Benchmarks[fam+"/w1"]
		if !ok || ref.NsPerOp <= 0 {
			fmt.Fprintf(w, "benchreg: FAIL: %s/w1 missing from this run (needed as the scaling reference)\n", fam)
			failed++
			continue
		}
		variants := make([]string, 0, len(base.ScalingFloors[fam]))
		for v := range base.ScalingFloors[fam] {
			variants = append(variants, v)
		}
		sort.Strings(variants)
		for _, v := range variants {
			floor := base.ScalingFloors[fam][v]
			m, ok := cur.Benchmarks[fam+"/"+v]
			if !ok || m.NsPerOp <= 0 {
				fmt.Fprintf(w, "benchreg: FAIL: %s/%s missing from this run (committed floor %.2fx)\n", fam, v, floor)
				failed++
				continue
			}
			speedup := ref.NsPerOp / m.NsPerOp
			if speedup < floor {
				fmt.Fprintf(w, "benchreg: FAIL: %s %s speedup %.2fx below committed floor %.2fx (w1 %.0f ns/op, %s %.0f ns/op)\n",
					fam, v, speedup, floor, ref.NsPerOp, v, m.NsPerOp)
				failed++
				continue
			}
			fmt.Fprintf(w, "benchreg: %-30s %s speedup %.2fx (floor %.2fx)\n", fam, v, speedup, floor)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scaling-floor failure(s)", failed)
	}
	return nil
}

// compareDim reports one benchmark dimension, returning 1 if it warned. A
// dimension absent from the baseline (zero) is skipped — old snapshots that
// predate -benchmem stay comparable on ns/op alone.
func compareDim(w io.Writer, name, unit string, base, cur, threshold float64) int {
	if base <= 0 {
		return 0
	}
	delta := 100 * (cur - base) / base
	if delta > threshold {
		fmt.Fprintf(w, "benchreg: WARNING: %s regressed %.1f%% (baseline %.0f %s, now %.0f %s; threshold %.0f%%)\n",
			name, delta, base, unit, cur, unit, threshold)
		return 1
	}
	fmt.Fprintf(w, "benchreg: %-30s %+.1f%% (baseline %.0f %s, now %.0f %s)\n",
		name, delta, base, unit, cur, unit)
	return 0
}
