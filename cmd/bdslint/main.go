// Command bdslint runs the determinism-contract invariant suite (maporder,
// noclock, roview, spawn — see internal/analysis) over the module.
//
// Standalone:
//
//	bdslint ./...                 # whole module (the CI gate)
//	bdslint ./internal/core       # one package
//	bdslint -list                 # describe the rules
//
// As a vet tool (the go/analysis unitchecker protocol, reimplemented on the
// standard library so the repo stays dependency-free):
//
//	go build -o bin/bdslint ./cmd/bdslint
//	go vet -vettool=bin/bdslint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/bdslint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches between the version probe, vet-tool mode, and the
// standalone driver.
func run(args []string) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			// go vet probes the tool's version to key its action cache.
			fmt.Println("bdslint version 3 (determinism-contract suite)")
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// go vet asks for the tool's flag set as JSON; the suite is not
			// configurable, so an empty list is the complete answer.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0])
	}

	fs := flag.NewFlagSet("bdslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "describe the suite's rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range bdslint.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
			if len(a.Guarded) > 0 {
				fmt.Printf("%-10s guards: %s\n", "", strings.Join(a.Guarded, ", "))
			}
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := bdslint.LintModule(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bdslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
