// Command bdslint runs the determinism-contract invariant suite (maporder,
// noclock, roview, spawn, idmap, hotalloc — see internal/analysis) over the
// module.
//
// Standalone:
//
//	bdslint ./...                 # whole module (the CI gate)
//	bdslint ./internal/core       # one package
//	bdslint -list                 # describe the rules
//	bdslint -report out.json ./...            # emit the ignore-accounting JSON
//	bdslint -budget testdata/lint/ignore_budget.json ./...  # fail on budget growth
//
// As a vet tool (the go/analysis unitchecker protocol, reimplemented on the
// standard library so the repo stays dependency-free):
//
//	go build -o bin/bdslint ./cmd/bdslint
//	go vet -vettool=bin/bdslint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/bdslint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches between the version probe, vet-tool mode, and the
// standalone driver.
func run(args []string) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			// go vet probes the tool's version to key its action cache.
			fmt.Println("bdslint version 4 (determinism-contract suite)")
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// go vet asks for the tool's flag set as JSON; the suite is not
			// configurable, so an empty list is the complete answer.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0])
	}

	fs := flag.NewFlagSet("bdslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "describe the suite's rules and exit")
	reportPath := fs.String("report", "", "write the ignore-accounting report JSON to this path (\"-\" for stdout)")
	budgetPath := fs.String("budget", "", "fail when justified ignores exceed the per-rule budget in this JSON file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range bdslint.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
			if len(a.Guarded) > 0 {
				fmt.Printf("%-10s guards: %s\n", "", strings.Join(a.Guarded, ", "))
			}
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, report, err := bdslint.LintModuleReport(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
		return 2
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	status := 0
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bdslint: %d finding(s)\n", len(diags))
		status = 1
	}
	if *budgetPath != "" {
		budget, err := readBudget(*budgetPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
			return 2
		}
		if msgs := bdslint.CheckBudget(report, budget); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(os.Stderr, "bdslint: %s\n", m)
			}
			status = 1
		}
	}
	return status
}

// writeReport marshals the ignore-accounting report to path ("-" = stdout).
func writeReport(path string, report *bdslint.IgnoreReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// readBudget parses the committed per-rule ignore budget. The file uses
// the same shape -report emits, so regenerating the budget after a
// deliberate change is `bdslint -report <budget-path> ./...`.
func readBudget(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var budget bdslint.IgnoreReport
	if err := json.Unmarshal(data, &budget); err != nil {
		return nil, fmt.Errorf("parsing budget %s: %v", path, err)
	}
	return budget.PerRule, nil
}
