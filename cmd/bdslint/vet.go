package main

// Vet-tool mode: when go vet runs with -vettool=bdslint it hands the tool
// one JSON config file per package, listing the package's sources and the
// compiler-export files of everything it imports. This file reimplements
// the slice of x/tools' unitchecker protocol the suite needs: parse the
// sources, type-check against the supplied export data (no re-parsing of
// dependencies — go vet already compiled them), run the suite, write the
// facts file go vet expects, and report findings on stderr with exit
// status 2, which go vet surfaces as a vet failure.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bdslint"
)

// vetConfig mirrors the fields of cmd/go's vet action config that the
// suite consumes; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package described by a vet config file.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bdslint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet requires the facts file regardless of findings; the suite
	// carries no cross-package facts, so an empty file suffices.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bdslint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the export data go vet supplies: ImportMap
	// translates source-level paths (vendoring), PackageFile locates the
	// compiled export file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	var typeErrs []error
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "bdslint: type-checking %s: %v\n", cfg.ImportPath, typeErrs[0])
		return 2
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	known := bdslint.KnownRules()
	var diags []analysis.Diagnostic
	diags = append(diags, analysis.CheckDirectives(pkg, known)...)
	// Share one directive set across the suite so stale-ignore detection
	// sees which directives matched any analyzer (same flow as LintModule).
	ds := analysis.NewDirectiveSet(pkg)
	for _, a := range bdslint.Suite() {
		if a.AppliesTo(importPathForGuard(cfg.ImportPath)) {
			diags = append(diags, analysis.RunAnalyzerWith(a, pkg, ds)...)
		}
	}
	diags = append(diags, ds.Stale(known)...)
	analysis.SortDiagnostics(diags)
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		return 2
	}
	return 0
}

// importPathForGuard strips go vet's test-variant suffixes so guarded
// packages match ("repro/internal/core [repro/internal/core.test]").
func importPathForGuard(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
