// Command lshell is a small SIS-like interactive shell around the library:
// read a BLIF circuit (or an embedded benchmark), run optimization commands
// one at a time, inspect statistics, and write the result. Commands can
// also be supplied on the command line with -c, separated by semicolons.
//
//	$ lshell
//	lshell> bench csel8
//	lshell> print_stats
//	lshell> eliminate 0
//	lshell> simplify
//	lshell> resub ext
//	lshell> verify
//	lshell> write_blif out.blif
//
// Commands: read_blif FILE, bench NAME, write_blif [FILE], print_stats,
// print [NODE], sweep, eliminate N, simplify, full_simplify, resub
// {sis|bdd|basic|ext|extgdc}, gcx, gkx, decomp, redundancy, script
// {A|B|C|algebraic}, verify, checkpoint, revert, help, quit.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/opt"
	"repro/internal/script"
	"repro/internal/verify"
)

type shell struct {
	nw      *network.Network
	ref     *network.Network // checkpoint for verify/revert
	out     *os.File
	errf    func(format string, args ...any)
	workers int  // planner pool bound for resub (0 = GOMAXPROCS)
	noCache bool // disable the trial memoization cache in resub
}

func main() {
	cmds := flag.String("c", "", "semicolon-separated commands to run non-interactively")
	workers := flag.Int("j", 0, "substitution planner workers (0 = GOMAXPROCS); results identical at any value")
	noCache := flag.Bool("nocache", false, "disable the trial memoization cache (identical results, every trial runs for real)")
	prof := cliutil.ProfileFlags()
	flag.Parse()
	*workers = cliutil.ClampWorkers(*workers, os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "lshell:", err)
		os.Exit(1)
	}
	defer prof.StopAndReport("lshell", os.Stderr)

	sh := &shell{out: os.Stdout, workers: *workers, noCache: *noCache}
	sh.errf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, "lshell: "+format+"\n", args...) }

	if *cmds != "" {
		for _, line := range strings.Split(*cmds, ";") {
			if !sh.exec(strings.TrimSpace(line)) {
				return
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("lshell> ")
	for sc.Scan() {
		if !sh.exec(strings.TrimSpace(sc.Text())) {
			return
		}
		fmt.Print("lshell> ")
	}
}

// exec runs one command; returns false to quit.
func (sh *shell) exec(line string) bool {
	if line == "" || strings.HasPrefix(line, "#") {
		return true
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]

	needNet := func() bool {
		if sh.nw == nil {
			sh.errf("no circuit loaded (read_blif or bench first)")
			return false
		}
		return true
	}

	switch cmd {
	case "quit", "exit", "q":
		return false

	case "help":
		fmt.Fprintln(sh.out, "commands: read_blif FILE | bench NAME | write_blif [FILE] | print_stats |")
		fmt.Fprintln(sh.out, "  print [NODE] | sweep | eliminate N | simplify | full_simplify | exact_dc | levels |")
		fmt.Fprintln(sh.out, "  resub {sis|bdd|basic|ext|extgdc} | gcx | gkx | decomp | redundancy | dot [FILE] |")
		fmt.Fprintln(sh.out, "  script {A|B|C|algebraic} | verify | checkpoint | revert | quit")

	case "read_blif":
		if len(args) != 1 {
			sh.errf("usage: read_blif FILE")
			break
		}
		f, err := os.Open(args[0])
		if err != nil {
			sh.errf("%v", err)
			break
		}
		nw, err := blif.Parse(f)
		f.Close()
		if err != nil {
			sh.errf("%v", err)
			break
		}
		sh.load(nw)

	case "bench":
		if len(args) != 1 {
			sh.errf("usage: bench NAME (one of %s)", strings.Join(bench.Names(), " "))
			break
		}
		found := false
		for _, n := range bench.Names() {
			if n == args[0] {
				found = true
			}
		}
		if !found {
			sh.errf("unknown benchmark %q", args[0])
			break
		}
		sh.load(bench.Get(args[0]))

	case "write_blif":
		if !needNet() {
			break
		}
		w := sh.out
		if len(args) == 1 {
			f, err := os.Create(args[0])
			if err != nil {
				sh.errf("%v", err)
				break
			}
			defer f.Close()
			w = f
		}
		if err := blif.Write(w, sh.nw); err != nil {
			sh.errf("%v", err)
		}

	case "print_stats":
		if !needNet() {
			break
		}
		fmt.Fprintf(sh.out, "%s: %d PI, %d PO, %d nodes, %d lits(sop), %d lits(fac)\n",
			sh.nw.Name, len(sh.nw.PIs()), len(sh.nw.POs()), sh.nw.NumNodes(),
			sh.nw.SOPLits(), sh.nw.FactoredLits())

	case "print":
		if !needNet() {
			break
		}
		if len(args) == 1 {
			n := sh.nw.Node(args[0])
			if n == nil {
				sh.errf("no node %q", args[0])
				break
			}
			fmt.Fprintf(sh.out, "%s = %s\n", n.Name, n.Render())
			break
		}
		fmt.Fprint(sh.out, sh.nw.String())

	case "dot":
		if !needNet() {
			break
		}
		w := sh.out
		if len(args) == 1 {
			f, err := os.Create(args[0])
			if err != nil {
				sh.errf("%v", err)
				break
			}
			defer f.Close()
			w = f
		}
		if err := sh.nw.WriteDot(w); err != nil {
			sh.errf("%v", err)
		}

	case "sweep":
		if needNet() {
			fmt.Fprintf(sh.out, "removed %d nodes\n", sh.nw.Sweep())
		}

	case "eliminate":
		if !needNet() {
			break
		}
		thr := 0
		if len(args) == 1 {
			v, err := strconv.Atoi(args[0])
			if err != nil {
				sh.errf("bad threshold %q", args[0])
				break
			}
			thr = v
		}
		fmt.Fprintf(sh.out, "eliminated %d nodes\n", sh.nw.Eliminate(thr))

	case "simplify":
		if needNet() {
			fmt.Fprintf(sh.out, "saved %d literals\n", opt.SimplifyAll(sh.nw))
		}

	case "full_simplify":
		if needNet() {
			fmt.Fprintf(sh.out, "saved %d literals\n", opt.FullSimplify(sh.nw, 1))
		}

	case "exact_dc":
		if needNet() {
			fmt.Fprintf(sh.out, "saved %d literals\n", opt.ExactDCSimplify(sh.nw, 0))
		}

	case "levels":
		if needNet() {
			_, depth := sh.nw.Levels()
			fmt.Fprintf(sh.out, "logic depth: %d\n", depth)
		}

	case "resub":
		if !needNet() {
			break
		}
		alg := "ext"
		if len(args) == 1 {
			alg = args[0]
		}
		switch alg {
		case "sis":
			fmt.Fprintf(sh.out, "%d substitutions\n", opt.ResubAlgebraicJ(sh.nw, true, sh.workers))
		case "bdd":
			fmt.Fprintf(sh.out, "%d substitutions\n", opt.ResubBDD(sh.nw))
		case "basic", "ext", "extgdc":
			cfg := map[string]core.Config{"basic": core.Basic, "ext": core.Extended, "extgdc": core.ExtendedGDC}[alg]
			st := core.Substitute(sh.nw, core.Options{Config: cfg, POS: true, Pool: true, Workers: sh.workers, NoTrialCache: sh.noCache})
			fmt.Fprintf(sh.out, "%d substitutions (%d POS, %d decompositions), %d RAR wires, lits %d -> %d\n",
				st.Substitutions, st.POSSubstitutions, st.Decompositions, st.WiresRemoved, st.LitsBefore, st.LitsAfter)
			if st.CacheHits+st.CacheMisses > 0 {
				fmt.Fprintf(sh.out, "trial cache: %d hits / %d misses (%.1f%%), %d invalidated\n",
					st.CacheHits, st.CacheMisses, 100*st.CacheHitRate(), st.CacheInvalidated)
			}
		default:
			sh.errf("unknown resub engine %q", alg)
		}

	case "gcx":
		if needNet() {
			fmt.Fprintf(sh.out, "extracted %d cubes\n", opt.Gcx(sh.nw))
		}

	case "gkx":
		if needNet() {
			fmt.Fprintf(sh.out, "extracted %d kernels\n", opt.Gkx(sh.nw))
		}

	case "decomp":
		if needNet() {
			fmt.Fprintf(sh.out, "created %d nodes\n", opt.Decomp(sh.nw))
		}

	case "redundancy":
		if needNet() {
			fmt.Fprintf(sh.out, "removed %d wires\n", opt.RemoveRedundancies(sh.nw, 1))
		}

	case "sat_sweep":
		if needNet() {
			fmt.Fprintf(sh.out, "merged %d nodes\n", opt.SATSweep(sh.nw))
		}

	case "script":
		if !needNet() {
			break
		}
		name := "A"
		if len(args) == 1 {
			name = args[0]
		}
		switch name {
		case "A":
			script.A(sh.nw)
		case "B":
			script.B(sh.nw)
		case "C":
			script.C(sh.nw)
		case "algebraic":
			script.Algebraic(sh.nw, script.ResubRAR(core.Extended))
		default:
			sh.errf("unknown script %q", name)
			break
		}
		fmt.Fprintf(sh.out, "lits(fac) = %d\n", sh.nw.FactoredLits())

	case "verify":
		if !needNet() {
			break
		}
		if sh.ref == nil {
			sh.errf("no checkpoint (set automatically at load; use checkpoint)")
			break
		}
		if verify.Equivalent(sh.ref, sh.nw) {
			fmt.Fprintln(sh.out, "equivalent to checkpoint")
		} else {
			fmt.Fprintln(sh.out, "NOT EQUIVALENT to checkpoint")
		}

	case "checkpoint":
		if needNet() {
			sh.ref = sh.nw.Clone()
			fmt.Fprintln(sh.out, "checkpoint set")
		}

	case "revert":
		if sh.ref == nil {
			sh.errf("no checkpoint")
			break
		}
		sh.nw = sh.ref.Clone()
		fmt.Fprintln(sh.out, "reverted to checkpoint")

	default:
		sh.errf("unknown command %q (try help)", cmd)
	}
	return true
}

func (sh *shell) load(nw *network.Network) {
	sh.nw = nw
	sh.ref = nw.Clone()
	fmt.Fprintf(sh.out, "loaded %s: %d PI, %d PO, %d nodes\n",
		nw.Name, len(nw.PIs()), len(nw.POs()), nw.NumNodes())
}
