// Command atpgtool exposes the ATPG substrate on BLIF circuits: stuck-at
// fault enumeration with PODEM test generation, fault-coverage statistics,
// and redundancy identification (cross-checked between the implication
// engine and the complete PODEM search).
//
// Usage:
//
//	atpgtool [-bench name | file.blif] [-mode report|redundancies|vectors]
//	         [-learn N] [-limit N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/netlist"
	"repro/internal/network"
)

func main() {
	benchName := flag.String("bench", "", "use an embedded benchmark")
	mode := flag.String("mode", "report", "report, grade, testset, redundancies or vectors")
	learn := flag.Int("learn", 1, "recursive learning depth for the implication engine")
	limit := flag.Int("limit", 0, "PODEM backtrack limit (0 = default)")
	flag.Parse()

	nw, err := load(*benchName, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpgtool:", err)
		os.Exit(1)
	}
	b := netlist.FromNetwork(nw)
	nl := b.NL
	eng := atpg.NewEngine(nl, atpg.Options{Learn: *learn > 0, LearnDepth: *learn})
	p := atpg.NewPodem(nl, *limit)

	if *mode == "testset" {
		ts := atpg.GenerateTestSet(nl, *limit)
		fmt.Printf("circuit: %s — %d collapsed faults\n", nw.Name, ts.Total)
		fmt.Printf("vectors: %d (after compaction), detected %d, redundant %d, aborted %d\n",
			len(ts.Vectors), ts.Detected, ts.Redundant, ts.Aborted)
		for i, vec := range ts.Vectors {
			fmt.Printf("  t%-3d %s\n", i, vecString(vec))
		}
		return
	}
	if *mode == "grade" {
		// Fast path: collapse + parallel fault simulation + PODEM on the
		// survivors.
		rep := atpg.GradeCoverage(nl, 16, *limit)
		fmt.Printf("circuit: %s — %d gates\n", nw.Name, nl.NumGates())
		fmt.Printf("faults:        %5d (%d after collapsing)\n", rep.Total, rep.Collapsed)
		fmt.Printf("by simulation: %5d\n", rep.BySimulation)
		fmt.Printf("by PODEM:      %5d\n", rep.ByPodem)
		fmt.Printf("redundant:     %5d\n", rep.Redundant)
		fmt.Printf("aborted:       %5d\n", rep.Aborted)
		cov := 100 * float64(rep.BySimulation+rep.ByPodem) / float64(rep.Collapsed)
		fmt.Printf("coverage:      %5.1f%% of collapsed faults\n", cov)
		return
	}

	type faultRec struct {
		fault atpg.Fault
		desc  string
	}
	var faults []faultRec
	nodeOf := gateOwners(nw, b)
	for g := 0; g < nl.NumGates(); g++ {
		kind := nl.KindOf(g)
		if kind != netlist.And && kind != netlist.Or && kind != netlist.Not {
			continue
		}
		for pin := range nl.Fanins(g) {
			for _, stuck := range []atpg.Value{atpg.Zero, atpg.One} {
				f := atpg.Fault{Wire: atpg.Wire{Gate: g, Pin: pin}, Stuck: stuck}
				faults = append(faults, faultRec{f, describe(nl, nodeOf, f)})
			}
		}
	}

	testable, redundant, aborted := 0, 0, 0
	implicationProofs := 0
	var redundantDescs []string
	for _, fr := range faults {
		_, res := p.GenerateTest(fr.fault)
		switch res {
		case atpg.Testable:
			testable++
			if *mode == "vectors" {
				vec, _ := p.GenerateTest(fr.fault)
				fmt.Printf("%-40s test %s\n", fr.desc, vecString(vec))
			}
		case atpg.Redundant:
			redundant++
			redundantDescs = append(redundantDescs, fr.desc)
		case atpg.Aborted:
			aborted++
		}
		kind := nl.KindOf(fr.fault.Wire.Gate)
		removable := kind == netlist.And && fr.fault.Stuck == atpg.One ||
			kind == netlist.Or && fr.fault.Stuck == atpg.Zero
		if removable && atpg.Untestable(eng, nl, fr.fault, -1) {
			implicationProofs++
			if res == atpg.Testable {
				fmt.Fprintf(os.Stderr, "BUG: implication engine contradicts PODEM on %s\n", fr.desc)
				os.Exit(1)
			}
		}
	}

	switch *mode {
	case "redundancies":
		sort.Strings(redundantDescs)
		for _, d := range redundantDescs {
			fmt.Println(d)
		}
	case "report", "vectors":
		fmt.Printf("circuit: %s — %d gates, %d wire faults\n", nw.Name, nl.NumGates(), len(faults))
		fmt.Printf("testable:   %5d (%.1f%% coverage)\n", testable, 100*float64(testable)/float64(len(faults)))
		fmt.Printf("redundant:  %5d\n", redundant)
		fmt.Printf("aborted:    %5d\n", aborted)
		fmt.Printf("implication-engine untestability proofs: %d (all confirmed by PODEM)\n", implicationProofs)
	default:
		fmt.Fprintln(os.Stderr, "atpgtool: unknown mode", *mode)
		os.Exit(2)
	}
}

func load(benchName, path string) (*network.Network, error) {
	if benchName != "" {
		return bench.Get(benchName), nil
	}
	if path == "" {
		return nil, fmt.Errorf("no input: give a BLIF file or -bench name")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blif.Parse(f)
}

// gateOwners maps each gate to the network node whose structure contains it.
func gateOwners(nw *network.Network, b *netlist.Build) map[int]string {
	out := make(map[int]string)
	for name, ng := range b.Nodes {
		out[ng.Out] = name
		for _, g := range ng.Cubes {
			out[g] = name
		}
	}
	return out
}

func describe(nl *netlist.Netlist, nodeOf map[int]string, f atpg.Fault) string {
	owner := nodeOf[f.Wire.Gate]
	if owner == "" {
		owner = "?"
	}
	return fmt.Sprintf("node %s %s gate#%d pin%d s-a-%d",
		owner, nl.KindOf(f.Wire.Gate), f.Wire.Gate, f.Wire.Pin, f.Stuck)
}

func vecString(vec map[string]bool) string {
	keys := make([]string, 0, len(vec))
	for k := range vec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v := 0
		if vec[k] {
			v = 1
		}
		fmt.Fprintf(&b, "%s=%d ", k, v)
	}
	return strings.TrimSpace(b.String())
}
