// Command bdsopt is the optimizer CLI: it reads a combinational BLIF
// circuit, runs a preparation script and/or a substitution algorithm, and
// writes the optimized BLIF with literal statistics.
//
// Usage:
//
//	bdsopt [-script A|B|C|algebraic|none] [-alg sis|basic|ext|extgdc|none]
//	       [-j N] [-nocache] [-o out.blif] [-verify] [in.blif]
//
// With no input file a benchmark name from the embedded suite may be given
// via -bench. Examples:
//
//	bdsopt -bench csel8 -script A -alg extgdc -verify
//	bdsopt -script A -alg ext -o out.blif circuit.blif
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/opt"
	"repro/internal/script"
	"repro/internal/verify"
)

func main() {
	scriptName := flag.String("script", "none", "preparation script: A, B, C, algebraic or none")
	alg := flag.String("alg", "none", "substitution algorithm: sis, basic, ext, extgdc or none")
	out := flag.String("o", "", "output BLIF path (default: stdout, suppressed with -q)")
	benchName := flag.String("bench", "", "use an embedded benchmark instead of an input file")
	doVerify := flag.Bool("verify", false, "equivalence-check the result against the input")
	quiet := flag.Bool("q", false, "suppress BLIF output, print statistics only")
	redund := flag.Bool("redund", false, "finish with whole-network redundancy removal")
	workers := flag.Int("j", 0, "substitution planner workers (0 = GOMAXPROCS); results identical at any value")
	noCache := flag.Bool("nocache", false, "disable the trial memoization cache (identical results, every trial runs for real)")
	prof := cliutil.ProfileFlags()
	flag.Parse()
	*workers = cliutil.ClampWorkers(*workers, os.Stderr)
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "bdsopt:", err)
		os.Exit(1)
	}
	defer prof.StopAndReport("bdsopt", os.Stderr)

	nw, err := load(*benchName, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdsopt:", err)
		os.Exit(1)
	}
	ref := nw.Clone()
	fmt.Fprintf(os.Stderr, "in:  %d nodes, %d lits (sop), %d lits (fac)\n",
		nw.NumNodes(), nw.SOPLits(), nw.FactoredLits())

	resub := resubFor(*alg, *workers, *noCache)
	switch *scriptName {
	case "A":
		script.A(nw)
	case "B":
		script.B(nw)
	case "C":
		script.C(nw)
	case "algebraic":
		if resub == nil {
			resub = func(*network.Network) {}
		}
		script.Algebraic(nw, resub)
		resub = nil // already applied inside the flow
	case "none":
	default:
		fmt.Fprintln(os.Stderr, "bdsopt: unknown script", *scriptName)
		os.Exit(2)
	}
	if resub != nil {
		resub(nw)
	}
	if *redund {
		n := opt.RemoveRedundancies(nw, 1)
		fmt.Fprintf(os.Stderr, "redundancy removal: %d wires\n", n)
	}

	fmt.Fprintf(os.Stderr, "out: %d nodes, %d lits (sop), %d lits (fac)\n",
		nw.NumNodes(), nw.SOPLits(), nw.FactoredLits())

	if *doVerify {
		if verify.Equivalent(ref, nw) {
			fmt.Fprintln(os.Stderr, "verify: equivalent")
		} else {
			fmt.Fprintln(os.Stderr, "verify: NOT EQUIVALENT")
			os.Exit(1)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdsopt:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := blif.Write(f, nw); err != nil {
			fmt.Fprintln(os.Stderr, "bdsopt:", err)
			os.Exit(1)
		}
	} else if !*quiet {
		_ = blif.Write(os.Stdout, nw)
	}
}

func load(benchName, path string) (*network.Network, error) {
	if benchName != "" {
		for _, n := range bench.Names() {
			if n == benchName {
				return bench.Get(benchName), nil
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q (see cmd/blifgen -list)", benchName)
	}
	if path == "" {
		return nil, fmt.Errorf("no input: give a BLIF file or -bench name")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blif.Parse(f)
}

func resubFor(alg string, workers int, noCache bool) script.Resub {
	rar := func(cfg core.Config) script.Resub {
		return script.ResubRARWith(core.Options{Config: cfg, POS: true, Pool: true, Workers: workers, NoTrialCache: noCache}, nil)
	}
	switch alg {
	case "sis":
		return script.ResubSISJ(workers)
	case "basic":
		return rar(core.Basic)
	case "ext":
		return rar(core.Extended)
	case "extgdc":
		return rar(core.ExtendedGDC)
	case "none":
		return nil
	}
	fmt.Fprintln(os.Stderr, "bdsopt: unknown algorithm", alg)
	os.Exit(2)
	return nil
}
